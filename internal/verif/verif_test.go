package verif

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"

	"sparc64v/internal/analytic"
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/trace"
	"sparc64v/internal/workload"
)

func collect(p workload.Profile, seed int64, n int) []trace.Record {
	return trace.Collect(trace.NewLimitSource(workload.New(p, seed, 0), n), 0)
}

func TestReverseTracerExactReplay(t *testing.T) {
	for _, p := range []workload.Profile{workload.SPECint95(), workload.TPCC()} {
		recs := collect(p, 3, 30000)
		prog, err := FromTrace(trace.NewSliceSource(recs))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prog.Len() != len(recs) {
			t.Fatalf("%s: Len=%d want %d", p.Name, prog.Len(), len(recs))
		}
		got := trace.Collect(prog.Replay(), 0)
		if len(got) != len(recs) {
			t.Fatalf("%s: replay yielded %d records, want %d", p.Name, len(got), len(recs))
		}
		for i := range recs {
			want := recs[i]
			if want.Op.IsBranch() && !want.Taken {
				want.EA = 0 // not-taken targets are not semantic
			}
			if got[i] != want {
				t.Fatalf("%s: record %d differs:\n got %+v\nwant %+v", p.Name, i, got[i], want)
			}
		}
		if prog.StaticInstrs() >= len(recs) {
			t.Errorf("%s: program has no static compression (%d static for %d dynamic)",
				p.Name, prog.StaticInstrs(), len(recs))
		}
	}
}

// Property: replay is exact for arbitrary seeds and window sizes.
func TestReverseTracerQuick(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		count := int(n)%4000 + 100
		recs := collect(workload.SPECint2000(), seed, count)
		prog, err := FromTrace(trace.NewSliceSource(recs))
		if err != nil {
			return false
		}
		got := trace.Collect(prog.Replay(), 0)
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			want := recs[i]
			if want.Op.IsBranch() && !want.Taken {
				want.EA = 0
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestReverseTracerRejectsBrokenFlow(t *testing.T) {
	recs := collect(workload.SPECint95(), 1, 100)
	recs[50].PC += 4 // break control flow
	if _, err := FromTrace(trace.NewSliceSource(recs)); err == nil {
		t.Fatal("broken control flow accepted")
	}
}

func TestProgramSerialization(t *testing.T) {
	recs := collect(workload.SPECfp95(), 9, 20000)
	prog, err := FromTrace(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prog.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Collect(prog.Replay(), 0)
	b := trace.Collect(back.Replay(), 0)
	if len(a) != len(b) {
		t.Fatalf("decoded program replays %d records, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
	if _, err := ReadProgram(bytes.NewReader([]byte("junkjunk"))); err == nil {
		t.Error("bad magic accepted")
	}
}

// The model must produce identical timing for the original trace and the
// reverse-traced program — the paper's "detailed match" requirement
// between the performance model and logic-simulator test programs.
func TestModelTimingMatchesReplay(t *testing.T) {
	recs := collect(workload.SPECint95(), 5, 40000)
	prog, err := FromTrace(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.NewModel(config.Base())
	opt := core.RunOptions{Insts: len(recs), Warmup: 1}
	r1, err := m.RunSources("orig", []trace.Source{trace.NewSliceSource(recs)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.RunSources("replay", []trace.Source{prog.Replay()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("timing mismatch: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.Committed, r2.Cycles, r2.Committed)
	}
}

func TestReferenceModelBasics(t *testing.T) {
	rf := NewReference(config.Base())
	rf.Run(trace.NewLimitSource(workload.New(workload.SPECint95(), 2, 0), 50000))
	cpi := rf.CPI()
	if cpi < 1 || cpi > 50 {
		t.Fatalf("reference CPI = %.2f implausible", cpi)
	}
	if NewReference(config.Base()).CPI() != 0 {
		t.Error("empty reference CPI != 0")
	}
}

// The reference and detailed models must agree on the direction of the
// paper's design changes (the initial-model validation methodology).
func TestTrendAgreement(t *testing.T) {
	base := config.Base()
	opt := core.RunOptions{Insts: 80_000}
	cases := []struct {
		name    string
		variant config.Config
	}{
		{"small L1", base.WithSmallL1()},
		{"off-chip direct-mapped L2", base.WithOffChipL2(1)},
	}
	for _, c := range cases {
		tc, err := RunTrendCheck(c.name, base, c.variant, workload.TPCC(), opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tc.Agree() {
			t.Errorf("%s: models disagree: model %.4f vs reference %.4f",
				c.name, tc.ModelDelta, tc.ReferenceDelta)
		}
	}
}

func TestAccuracyStudy(t *testing.T) {
	study, err := RunAccuracyStudy(config.Base(), workload.SPECint2000(),
		core.RunOptions{Insts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Points) != 8 {
		t.Fatalf("%d points", len(study.Points))
	}
	// v1 must overestimate performance relative to v8.
	if study.Points[0].RatioToFinal < 1 {
		t.Errorf("v1 ratio %.3f < 1", study.Points[0].RatioToFinal)
	}
	// v8's ratio is 1 by construction.
	if r := study.Points[7].RatioToFinal; r < 0.999 || r > 1.001 {
		t.Errorf("v8 ratio %.3f != 1", r)
	}
	// The final model must land within the paper's error budget (<5%)
	// of the physical-machine proxy.
	if study.FinalError() > 0.05 {
		t.Errorf("final error %.3f exceeds 5%%", study.FinalError())
	}
	// The machine proxy differs from every early version.
	if study.MachineIPC <= 0 {
		t.Error("machine proxy IPC not positive")
	}
}

// TestAccuracyStudyBatchedMatchesSerial: the ladder's lockstep-batched path
// (opt.Batch > 1) must reproduce the serial study exactly — same IPCs, same
// ratios — including when the chunk size forces the nine rungs to split
// across several batches.
func TestAccuracyStudyBatchedMatchesSerial(t *testing.T) {
	opt := core.RunOptions{Insts: 40_000, Workers: 1}
	want, err := RunAccuracyStudy(config.Base(), workload.SPECint2000(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{4, 16} {
		bo := opt
		bo.Batch = batch
		bo.Workers = 2
		got, err := RunAccuracyStudy(config.Base(), workload.SPECint2000(), bo)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if got.MachineIPC != want.MachineIPC {
			t.Errorf("batch=%d: machine IPC %v, want %v", batch, got.MachineIPC, want.MachineIPC)
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Errorf("batch=%d: point %d = %+v, want %+v", batch, i, got.Points[i], want.Points[i])
			}
		}
	}
}

// TestAccuracyStudyContextCancelled: the fidelity ladder must report the
// cancellation instead of running all nine simulations.
func TestAccuracyStudyContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAccuracyStudyContext(ctx, config.Base(), workload.SPECint95(),
		core.RunOptions{Insts: 30_000, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAccuracyStudyContext err = %v", err)
	}
}

// TestReferenceRunContextCancelled: the in-order reference loop polls its
// context on an instruction stride.
func TestReferenceRunContextCancelled(t *testing.T) {
	rf := NewReference(config.Base())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := rf.RunContext(ctx, trace.NewLimitSource(workload.New(workload.SPECint95(), 1, 0), 1_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Reference.RunContext err = %v", err)
	}
	if rf.Instructions >= 1_000_000 {
		t.Fatalf("reference consumed the whole trace (%d instrs) despite cancellation", rf.Instructions)
	}
}

// TestTrendCheckContextCancelled covers the four-way scheduled trend run.
func TestTrendCheckContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := config.Base()
	_, err := RunTrendCheckContext(ctx, "x", base, base.WithSmallBHT(), workload.SPECint95(),
		core.RunOptions{Insts: 30_000, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTrendCheckContext err = %v", err)
	}
}

// TestAnalyticRung: the grey-box estimator renders as a v0 rung scored
// against the same machine proxy and final model as the simulated ladder,
// and workloads outside the calibration set degrade to an error rather
// than a fabricated rung.
func TestAnalyticRung(t *testing.T) {
	cal, err := analytic.Default()
	if err != nil {
		t.Fatal(err)
	}
	study := AccuracyStudy{
		Workload:   "SPECint2000",
		MachineIPC: 0.50,
		Points: []VersionPoint{
			{Name: "v1", IPC: 0.90},
			{Name: "v8", IPC: 0.48},
		},
	}
	v0, err := AnalyticRung(cal, config.Base(), &study)
	if err != nil {
		t.Fatal(err)
	}
	if v0.Name != "v0" || v0.IPC <= 0 {
		t.Fatalf("rung = %+v", v0)
	}
	if want := v0.IPC / 0.48; v0.RatioToFinal != want {
		t.Errorf("RatioToFinal = %v, want %v", v0.RatioToFinal, want)
	}
	if want := (v0.IPC - 0.50) / 0.50; v0.ErrorVsMachine < want-1e-9 || v0.ErrorVsMachine > want+1e-9 {
		t.Errorf("ErrorVsMachine = %v, want %v", v0.ErrorVsMachine, want)
	}

	study.Workload = "quake3"
	if _, err := AnalyticRung(cal, config.Base(), &study); !errors.Is(err, analytic.ErrUncalibrated) {
		t.Errorf("uncalibrated workload: err = %v, want ErrUncalibrated", err)
	}
	study.Workload = "SPECint2000"
	study.Points = nil
	if _, err := AnalyticRung(cal, config.Base(), &study); err == nil {
		t.Error("empty ladder: err = nil, want error")
	}
}
