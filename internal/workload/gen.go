package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

// Address-space layout of a synthetic program. Private regions are offset
// per CPU so SMP processes never alias by accident; the Shared region sits
// at one fixed base for all CPUs.
const (
	codeBase    = 0x0000_0000_0010_0000
	driverPC    = 0x0000_0000_0001_0000
	dataBase    = 0x0000_0010_0000_0000
	stackBase   = 0x0000_7ff0_0000_0000
	sharedBase  = 0x0000_4000_0000_0000
	cpuSpacing  = 0x0000_0040_0000_0000 // 256GB between CPUs' private spaces
	frameBytes  = 1 << 10
	regionAlign = 1 << 21
)

// slot is one static instruction template inside a block.
type slot struct {
	class  isa.Class
	region int8 // data region index, -1 for non-memory slots
	fpDest bool // loads only: destination register file
}

// block is a static basic block: body slots followed by one conditional
// branch (or, for a function's last block, the loop-back branch).
type block struct {
	pc     uint64
	slots  []slot
	takenP float64 // static bias of the terminating conditional branch
	callee int32   // function called from this block, or -1
}

// function is a contiguous run of blocks ending in a loop-back branch and a
// return instruction.
type function struct {
	first, nblocks int
	entryPC        uint64
	returnPC       uint64 // pc of the Return instruction
}

// streamState is the run-time cursor of one Stream/Chain stream.
type streamState struct {
	ptr      uint64
	chainDst uint8 // register holding the "pointer" for Chain regions
}

// regionState is the run-time state of a data region.
type regionState struct {
	base    uint64
	bytes   uint64
	stride  uint64
	streams []streamState
	next    int // round-robin stream selector
}

type frame struct {
	fn       int
	blockIdx int // within function
	iterLeft int
	retPC    uint64
	stackPtr uint64
}

// Gen is a deterministic, infinite trace source for one CPU's view of a
// workload. It implements trace.Source.
type Gen struct {
	prof     Profile
	rng      *rand.Rand
	cpu      int
	blocks   []block
	funcs    []function
	regions  []regionState
	regdescs []Region // effective region descriptors (incl. Shared)
	zipfCDF  []float64

	stack []frame
	buf   []trace.Record
	pos   int

	// register dataflow state
	recentInt [32]uint8
	recentFP  [32]uint8
	riPos     int
	rfPos     int
	nextInt   uint8
	nextFP    uint8

	emitted uint64
}

var _ trace.Source = (*Gen)(nil)

// New builds the static program for profile p, seeded deterministically,
// for the given CPU index (0 for uniprocessor runs).
func New(p Profile, seed int64, cpu int) *Gen {
	g := &Gen{
		prof:    p,
		rng:     rand.New(rand.NewSource(seed ^ int64(cpu)*0x9e3779b97f4a7c)),
		cpu:     cpu,
		nextInt: 8,
		nextFP:  isa.FPRegBase + 4,
	}
	for i := range g.recentInt {
		g.recentInt[i] = 8
	}
	for i := range g.recentFP {
		g.recentFP[i] = isa.FPRegBase + 4
	}
	g.buildRegions()
	g.buildProgram()
	g.buildZipf()
	return g
}

// NewMP builds n generators sharing the profile's Shared region, one per
// CPU, with decorrelated seeds. The Shared region must be configured
// (SharedBytes > 0) for sharing to exist; otherwise the CPUs simply run
// disjoint copies of the workload.
func NewMP(p Profile, seed int64, n int) []*Gen {
	gens := make([]*Gen, n)
	for i := range gens {
		gens[i] = New(p, seed, i)
	}
	return gens
}

// Name returns the profile name.
func (g *Gen) Name() string { return g.prof.Name }

// Emitted returns the number of records produced so far.
func (g *Gen) Emitted() uint64 { return g.emitted }

func (g *Gen) buildRegions() {
	regs := g.prof.Regions
	if g.prof.SharedBytes > 0 {
		regs = append(append([]Region{}, regs...), Region{
			Kind: Shared, Weight: g.prof.SharedWeight,
			Bytes: g.prof.SharedBytes, StoreFrac: g.prof.SharedStoreFr,
		})
	}
	g.regdescs = regs
	base := uint64(dataBase) + uint64(g.cpu)*cpuSpacing
	for _, r := range regs {
		rs := regionState{bytes: uint64(r.Bytes)}
		switch r.Kind {
		case Stack:
			rs.base = stackBase + uint64(g.cpu)*cpuSpacing
		case Shared:
			rs.base = sharedBase
		default:
			rs.base = base
			if r.AliasWithCode {
				// Land on the code image's cache sets modulo any power-of-
				// two cache up to 64MB: offset the region base by codeBase
				// within a 64MB-aligned frame.
				rs.base = (base + (64 << 20) - 1) &^ ((64 << 20) - 1)
				rs.base += codeBase
				base = rs.base
			}
			base += (uint64(r.Bytes) + regionAlign) &^ (regionAlign - 1)
		}
		nstreams := r.Streams
		if nstreams <= 0 {
			nstreams = 1
		}
		rs.streams = make([]streamState, nstreams)
		for i := range rs.streams {
			rs.streams[i].ptr = rs.base + uint64(g.rng.Int63n(r.Bytes))&^63
			rs.streams[i].chainDst = 8 + uint8(i%16)
		}
		rs.stride = uint64(r.StrideBytes)
		if rs.stride == 0 {
			rs.stride = 64
		}
		g.regions = append(g.regions, rs)
	}
}

func (g *Gen) pickRegion(store bool) int8 {
	regs := g.regdescs
	var total float64
	for _, r := range regs {
		total += regionWeight(r, store)
	}
	x := g.rng.Float64() * total
	for i, r := range regs {
		x -= regionWeight(r, store)
		if x < 0 {
			return int8(i)
		}
	}
	return int8(len(regs) - 1)
}

func regionWeight(r Region, store bool) float64 {
	sf := r.StoreFrac
	if r.Kind == Chain {
		sf = 0.02 // pointer chases are read chains
	} else if sf == 0 {
		sf = 0.25
	}
	if store {
		return r.Weight * sf
	}
	return r.Weight * (1 - sf)
}

// buildProgram lays out the static code: functions, blocks, slots, branch
// biases and the static call graph.
func (g *Gen) buildProgram() {
	p := &g.prof
	classes, weights := mixTables(p.Mix)
	fpShare := 0.0
	for c, w := range p.Mix {
		if c.IsFloat() {
			fpShare += w
		}
	}
	pc := uint64(codeBase)
	nf := p.NumFuncs
	g.funcs = make([]function, nf)
	for f := 0; f < nf; f++ {
		fn := &g.funcs[f]
		fn.first = len(g.blocks)
		fn.nblocks = p.BlocksPerFunc
		fn.entryPC = pc
		for b := 0; b < p.BlocksPerFunc; b++ {
			n := p.BlockLen + g.rng.Intn(5) - 2
			if n < 3 {
				n = 3
			}
			blk := block{pc: pc, callee: -1}
			for s := 0; s < n-1; s++ {
				sl := slot{region: -1}
				switch {
				case g.rng.Float64() < p.SpecialFrac:
					sl.class = isa.Special
				default:
					sl.class = classes[sample(g.rng, weights)]
				}
				if sl.class.IsMemory() {
					sl.region = g.pickRegion(sl.class == isa.Store)
					if sl.class == isa.Load {
						sl.fpDest = g.rng.Float64() < fpShare*1.8
					}
				}
				blk.slots = append(blk.slots, sl)
			}
			// Terminating conditional branch (loop-back for the last block).
			blk.slots = append(blk.slots, slot{class: isa.Branch, region: -1})
			if g.rng.Float64() < p.BiasedFrac {
				blk.takenP = p.BiasedTaken
				if g.rng.Float64() < 0.3 {
					blk.takenP = 1 - p.BiasedTaken // biased not-taken
				}
			} else {
				blk.takenP = 0.25 + 0.5*g.rng.Float64()
			}
			if g.rng.Float64() < p.CallFrac {
				blk.callee = int32(g.rng.Intn(nf))
			}
			pc += uint64(len(blk.slots)) * isa.InstrBytes
			if blk.callee >= 0 {
				pc += isa.InstrBytes // reserve the call slot on the fall-through path
			}
			g.blocks = append(g.blocks, blk)
		}
		fn.returnPC = pc
		pc += isa.InstrBytes
		g.funcs[f] = *fn
	}
	// Rewire callees through the Zipf popularity permutation so hot
	// functions receive most static call sites.
	perm := g.rng.Perm(nf)
	for i := range g.blocks {
		if g.blocks[i].callee >= 0 {
			g.blocks[i].callee = int32(perm[g.zipfRankFor(int(g.blocks[i].callee))])
		}
	}
}

// zipfRankFor maps a uniform index to a Zipf-distributed rank determined at
// build time; build-time call sites use it so the static call graph already
// concentrates on hot functions.
func (g *Gen) zipfRankFor(uniform int) int {
	n := g.prof.NumFuncs
	// Map the uniform index through the Zipf CDF shape deterministically.
	u := (float64(uniform) + 0.5) / float64(n)
	s := g.prof.ZipfS
	if s <= 0 {
		return uniform
	}
	// Inverse-CDF approximation for a Zipf-like distribution.
	r := int(math.Pow(u, s) * float64(n))
	if r >= n {
		r = n - 1
	}
	return r
}

func (g *Gen) buildZipf() {
	n := g.prof.NumFuncs
	s := g.prof.ZipfS
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	g.zipfCDF = cdf
}

func (g *Gen) zipfFunc() int {
	if g.prof.HotFuncs > 0 {
		// Two-tier popularity: a uniform hot plateau plus a uniform tail.
		hot := g.prof.HotFuncs
		if hot > g.prof.NumFuncs {
			hot = g.prof.NumFuncs
		}
		if g.rng.Float64() < g.prof.HotProb {
			return g.rng.Intn(hot)
		}
		n := g.prof.NumFuncs - g.prof.HotFuncs
		if n <= 0 {
			return g.rng.Intn(g.prof.NumFuncs)
		}
		return g.prof.HotFuncs + g.rng.Intn(n)
	}
	x := g.rng.Float64()
	return sort.SearchFloat64s(g.zipfCDF, x)
}

func mixTables(mix map[isa.Class]float64) ([]isa.Class, []float64) {
	classes := make([]isa.Class, 0, len(mix))
	for c := isa.Class(0); c.Valid(); c++ {
		if mix[c] > 0 {
			classes = append(classes, c)
		}
	}
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = mix[c]
	}
	return classes, weights
}

func sample(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// geometric samples a geometric variate with the given mean (≥1).
func (g *Gen) geometric(mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / float64(mean)
	n := 1
	for g.rng.Float64() > p && n < mean*8 {
		n++
	}
	return n
}

// Next implements trace.Source; the stream is infinite.
func (g *Gen) Next(r *trace.Record) bool {
	for g.pos >= len(g.buf) {
		g.refill()
	}
	*r = g.buf[g.pos]
	g.pos++
	g.emitted++
	return true
}

// call pushes a frame for function f, returning to retPC.
func (g *Gen) call(f int, retPC uint64) {
	g.stack = append(g.stack, frame{
		fn:       f,
		iterLeft: g.geometric(g.prof.LoopIterMean),
		retPC:    retPC,
		stackPtr: stackBase + uint64(g.cpu)*cpuSpacing - uint64(len(g.stack))*frameBytes,
	})
}

// refill emits the next block (or driver/return glue) into g.buf.
func (g *Gen) refill() {
	g.buf = g.buf[:0]
	g.pos = 0
	if len(g.stack) == 0 {
		// Driver: a two-instruction dispatch loop that calls a Zipf-popular
		// function per "transaction", then branches back to itself.
		if g.emitted > 0 {
			g.buf = append(g.buf, trace.Record{
				PC: driverPC + isa.InstrBytes, Op: isa.Branch, Taken: true,
				EA:  driverPC,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
			})
		}
		f := g.zipfFunc()
		g.buf = append(g.buf, trace.Record{
			PC: driverPC, Op: isa.Call, Taken: true,
			EA:  g.funcs[f].entryPC,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		})
		g.call(f, driverPC+isa.InstrBytes)
		return
	}
	fr := &g.stack[len(g.stack)-1]
	fn := &g.funcs[fr.fn]
	if fr.blockIdx >= fn.nblocks {
		// Loop epilogue: emit the Return and pop.
		g.buf = append(g.buf, trace.Record{
			PC: fn.returnPC, Op: isa.Return, Taken: true, EA: fr.retPC,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		})
		g.stack = g.stack[:len(g.stack)-1]
		return
	}
	blk := &g.blocks[fn.first+fr.blockIdx]
	last := fr.blockIdx == fn.nblocks-1
	fellThrough := false
	pc := blk.pc
	for i, sl := range blk.slots {
		isTerm := i == len(blk.slots)-1
		var rec trace.Record
		rec.PC = pc
		rec.Dst, rec.Src1, rec.Src2 = isa.RegNone, isa.RegNone, isa.RegNone
		switch {
		case isTerm && last:
			// Loop-back branch.
			rec.Op = isa.Branch
			rec.Src1 = g.pickRecent(false)
			if fr.iterLeft > 1 {
				fr.iterLeft--
				rec.Taken = true
				rec.EA = fn.entryPC
				fr.blockIdx = 0
			} else {
				rec.Taken = false
				fr.blockIdx++ // falls into epilogue
				fellThrough = true
			}
		case isTerm:
			rec.Op = isa.Branch
			rec.Src1 = g.pickRecent(false)
			if g.rng.Float64() < blk.takenP {
				rec.Taken = true
				skip := fr.blockIdx + 2
				if skip > fn.nblocks-1 {
					skip = fn.nblocks - 1
				}
				rec.EA = g.blocks[fn.first+skip].pc
				fr.blockIdx = skip
			} else {
				fr.blockIdx++
				fellThrough = true
			}
		default:
			g.emitSlot(&rec, sl, fr)
		}
		g.buf = append(g.buf, rec)
		pc += isa.InstrBytes
	}
	// Static call site: on the fall-through path after the block, call the
	// callee (a taken terminator jumps over the call instruction). At the
	// depth limit the callee degenerates to a call/return pair, bounding
	// recursion while keeping the instruction stream self-consistent.
	if blk.callee >= 0 && fellThrough {
		g.buf = append(g.buf, trace.Record{
			PC: pc, Op: isa.Call, Taken: true,
			EA:  g.funcs[blk.callee].entryPC,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		})
		g.call(int(blk.callee), pc+isa.InstrBytes)
		if len(g.stack) > g.prof.MaxCallDepth {
			// Beyond the depth cap, functions run a single loop pass, which
			// makes the call tree subcritical and bounds transaction size.
			g.stack[len(g.stack)-1].iterLeft = 1
		}
	}
}

// emitSlot fills rec for a body slot, assigning registers and addresses.
func (g *Gen) emitSlot(rec *trace.Record, sl slot, fr *frame) {
	rec.Op = sl.class
	switch sl.class {
	case isa.Load:
		rs := &g.regions[sl.region]
		kind := g.regdescs[sl.region].Kind
		var st *streamState
		rec.EA, rec.Src1, st = g.nextAddr(rs, kind, fr)
		rec.Size = 8
		if sl.fpDest {
			rec.Dst = g.newFPDst()
		} else {
			rec.Dst = g.newIntDst()
			if kind == Chain && st != nil {
				// The loaded value is the next pointer of the chain: the
				// following chain access depends on this load's result.
				st.chainDst = rec.Dst
			}
		}
	case isa.Store:
		rs := &g.regions[sl.region]
		kind := g.regdescs[sl.region].Kind
		rec.EA, rec.Src1, _ = g.nextAddr(rs, kind, fr)
		rec.Size = 8
		rec.Src2 = g.pickRecent(g.rng.Float64() < 0.3)
	case isa.Nop, isa.Special:
		// no register effects
	default:
		rec.Src1 = g.pickRecent(sl.class.IsFloat())
		if g.rng.Float64() < 0.6 {
			rec.Src2 = g.pickRecent(sl.class.IsFloat())
		}
		if sl.class.IsFloat() {
			rec.Dst = g.newFPDst()
		} else {
			rec.Dst = g.newIntDst()
		}
	}
}

// nextAddr produces the effective address for an access to region rs, the
// register the address computation depends on, and (for stream/chain
// regions) the stream that was advanced.
func (g *Gen) nextAddr(rs *regionState, kind RegionKind, fr *frame) (uint64, uint8, *streamState) {
	switch kind {
	case Stack:
		off := uint64(g.rng.Intn(frameBytes/8)) * 8
		return fr.stackPtr - off, 14, nil // %sp-relative
	case Stream:
		st := &rs.streams[rs.next]
		rs.next = (rs.next + 1) % len(rs.streams)
		st.ptr += rs.stride
		if st.ptr >= rs.base+rs.bytes {
			st.ptr = rs.base
		}
		return st.ptr, g.pickRecent(false), st
	case Chain:
		st := &rs.streams[rs.next]
		rs.next = (rs.next + 1) % len(rs.streams)
		st.ptr += 64
		if st.ptr >= rs.base+rs.bytes {
			st.ptr = rs.base
		}
		// Address depends on the previously loaded pointer: serialized.
		return st.ptr, st.chainDst, st
	default: // Random, Shared
		line := uint64(g.rng.Int63n(int64(rs.bytes >> 6)))
		return rs.base + line*64 + uint64(g.rng.Intn(8))*8, g.pickRecent(false), nil
	}
}

// pickRecent returns a recently written register at a geometric dependency
// distance, modeling the workload's inherent ILP.
func (g *Gen) pickRecent(fp bool) uint8 {
	d := int(g.rng.ExpFloat64() * g.prof.DepDistMean)
	if d >= len(g.recentInt) {
		d = len(g.recentInt) - 1
	}
	if fp {
		return g.recentFP[(g.rfPos-1-d+2*len(g.recentFP))%len(g.recentFP)]
	}
	return g.recentInt[(g.riPos-1-d+2*len(g.recentInt))%len(g.recentInt)]
}

func (g *Gen) newIntDst() uint8 {
	r := g.nextInt
	g.nextInt++
	if g.nextInt >= 28 {
		g.nextInt = 8
	}
	g.recentInt[g.riPos%len(g.recentInt)] = r
	g.riPos++
	return r
}

func (g *Gen) newFPDst() uint8 {
	r := g.nextFP
	g.nextFP++
	if g.nextFP >= isa.FPRegBase+28 {
		g.nextFP = isa.FPRegBase + 4
	}
	g.recentFP[g.rfPos%len(g.recentFP)] = r
	g.rfPos++
	return r
}

// Describe summarizes the static program (used by traceinfo and tests).
func (g *Gen) Describe() string {
	return fmt.Sprintf("%s: funcs=%d blocks=%d code=%dKB regions=%d",
		g.prof.Name, len(g.funcs), len(g.blocks), g.prof.CodeBytes()>>10,
		len(g.regions))
}
