package workload

import (
	"testing"

	"sparc64v/internal/isa"
	"sparc64v/internal/trace"
)

func drain(g *Gen, n int) []trace.Record {
	out := make([]trace.Record, n)
	var r trace.Record
	for i := 0; i < n; i++ {
		if !g.Next(&r) {
			t := out[:i]
			return t
		}
		out[i] = r
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := New(SPECint95(), 7, 0)
	b := New(SPECint95(), 7, 0)
	ra, rb := drain(a, 5000), drain(b, 5000)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	c := New(SPECint95(), 8, 0)
	rc := drain(c, 5000)
	same := 0
	for i := range rc {
		if rc[i] == ra[i] {
			same++
		}
	}
	if same == len(rc) {
		t.Error("different seeds produced identical traces")
	}
}

func TestRecordsValid(t *testing.T) {
	for _, p := range append(UPProfiles(), TPCC16P()) {
		g := New(p, 1, 0)
		var r trace.Record
		for i := 0; i < 20000; i++ {
			if !g.Next(&r) {
				t.Fatalf("%s: source ended", p.Name)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s record %d: %v (%+v)", p.Name, i, err, r)
			}
		}
		if g.Emitted() != 20000 {
			t.Errorf("%s: Emitted = %d", p.Name, g.Emitted())
		}
	}
}

// Instruction-class mix should be in the neighborhood of the profile's Mix
// (branches and calls dilute it, so the tolerance is loose).
func TestMixApproximatelyHonored(t *testing.T) {
	for _, p := range UPProfiles() {
		g := New(p, 3, 0)
		recs := drain(g, 200000)
		counts := map[isa.Class]int{}
		for _, r := range recs {
			counts[r.Op]++
		}
		n := float64(len(recs))
		loadFrac := float64(counts[isa.Load]) / n
		if loadFrac < 0.10 || loadFrac > 0.40 {
			t.Errorf("%s: load fraction %.3f out of plausible range", p.Name, loadFrac)
		}
		brFrac := float64(counts[isa.Branch]+counts[isa.Call]+counts[isa.Return]) / n
		if brFrac < 0.03 || brFrac > 0.35 {
			t.Errorf("%s: branch fraction %.3f out of plausible range", p.Name, brFrac)
		}
		// FP workloads must contain FP work; integer ones must not.
		fp := counts[isa.FPAdd] + counts[isa.FPMul] + counts[isa.FPMulAdd]
		if p.Name == "SPECfp95" || p.Name == "SPECfp2000" {
			if float64(fp)/n < 0.15 {
				t.Errorf("%s: FP fraction %.3f too low", p.Name, float64(fp)/n)
			}
		} else if fp > 0 && float64(fp)/n > 0.01 {
			t.Errorf("%s: unexpected FP fraction %.3f", p.Name, float64(fp)/n)
		}
	}
}

// Block lengths imply branch spacing: FP profiles have much longer blocks.
func TestBlockStructure(t *testing.T) {
	intRecs := drain(New(SPECint95(), 1, 0), 100000)
	fpRecs := drain(New(SPECfp95(), 1, 0), 100000)
	brSpacing := func(recs []trace.Record) float64 {
		br := 0
		for _, r := range recs {
			if r.Op.IsBranch() {
				br++
			}
		}
		return float64(len(recs)) / float64(br)
	}
	si, sf := brSpacing(intRecs), brSpacing(fpRecs)
	if sf < si*1.8 {
		t.Errorf("FP branch spacing %.1f not much larger than int %.1f", sf, si)
	}
}

// PCs must be 4-byte aligned, stable per class (a given PC always has the
// same class), and control flow must be consistent: the next record's PC
// equals NextPC() of the previous one.
func TestControlFlowConsistency(t *testing.T) {
	for _, p := range []Profile{SPECint95(), TPCC()} {
		g := New(p, 11, 0)
		recs := drain(g, 150000)
		classAt := map[uint64]isa.Class{}
		for i, r := range recs {
			if r.PC%4 != 0 {
				t.Fatalf("%s: unaligned PC %#x", p.Name, r.PC)
			}
			if c, ok := classAt[r.PC]; ok && c != r.Op {
				t.Fatalf("%s: PC %#x class changed %v -> %v", p.Name, r.PC, c, r.Op)
			}
			classAt[r.PC] = r.Op
			if i > 0 {
				want := recs[i-1].NextPC()
				if r.PC != want {
					t.Fatalf("%s: record %d PC=%#x, want %#x after %v",
						p.Name, i, r.PC, want, recs[i-1])
				}
			}
		}
	}
}

// The TPC-C static code footprint must far exceed SPECint95's, and its
// distinct-PC working set must actually show up in the trace.
func TestCodeFootprints(t *testing.T) {
	tp, si := TPCC(), SPECint95()
	if tp.CodeBytes() < 16*si.CodeBytes() {
		t.Errorf("TPC-C code %d not ≫ SPECint95 code %d", tp.CodeBytes(), si.CodeBytes())
	}
	g := New(tp, 5, 0)
	recs := drain(g, 300000)
	pcs := map[uint64]struct{}{}
	for _, r := range recs {
		pcs[r.PC] = struct{}{}
	}
	if len(pcs)*4 < 128<<10 {
		t.Errorf("TPC-C dynamic code footprint only %d bytes", len(pcs)*4)
	}
}

// Chain regions must produce load->load dependencies (src of the next chain
// load equals dst of a previous chain load).
func TestChainDependencies(t *testing.T) {
	p := Profile{
		Name:     "chain-only",
		Mix:      map[isa.Class]float64{isa.IntALU: 0.3, isa.Load: 0.7},
		NumFuncs: 2, BlocksPerFunc: 4, BlockLen: 8,
		LoopIterMean: 50, ZipfS: 1, BiasedFrac: 1, BiasedTaken: 0.95,
		Regions:     []Region{{Kind: Chain, Weight: 1, Bytes: 1 << 20, Streams: 1}},
		DepDistMean: 2, MaxCallDepth: 4,
	}
	g := New(p, 2, 0)
	recs := drain(g, 5000)
	var lastChainDst uint8 = isa.RegNone
	deps := 0
	for _, r := range recs {
		if r.Op == isa.Load {
			if lastChainDst != isa.RegNone && r.Src1 == lastChainDst {
				deps++
			}
			if isa.IsIntReg(r.Dst) {
				lastChainDst = r.Dst
			}
		}
	}
	if deps < 100 {
		t.Errorf("only %d chained load dependencies observed", deps)
	}
}

// Stream regions advance sequentially.
func TestStreamAddresses(t *testing.T) {
	p := Profile{
		Name:     "stream-only",
		Mix:      map[isa.Class]float64{isa.IntALU: 0.3, isa.Load: 0.7},
		NumFuncs: 2, BlocksPerFunc: 4, BlockLen: 8,
		LoopIterMean: 50, ZipfS: 1, BiasedFrac: 1, BiasedTaken: 0.95,
		Regions:     []Region{{Kind: Stream, Weight: 1, Bytes: 1 << 20, StrideBytes: 8, Streams: 1}},
		DepDistMean: 2, MaxCallDepth: 4,
	}
	g := New(p, 2, 0)
	recs := drain(g, 2000)
	var prev uint64
	increasing, total := 0, 0
	for _, r := range recs {
		if r.Op != isa.Load {
			continue
		}
		if prev != 0 && r.EA == prev+8 {
			increasing++
		}
		prev = r.EA
		total++
	}
	if total == 0 || float64(increasing)/float64(total) < 0.9 {
		t.Errorf("stream not sequential: %d/%d strided", increasing, total)
	}
}

// MP generators must share only the Shared region.
func TestMPSharing(t *testing.T) {
	gens := NewMP(TPCC16P(), 9, 4)
	if len(gens) != 4 {
		t.Fatalf("NewMP returned %d gens", len(gens))
	}
	seen := make([]map[uint64]struct{}, 4)
	for i, g := range gens {
		seen[i] = map[uint64]struct{}{}
		for _, r := range drain(g, 100000) {
			if r.Op.IsMemory() {
				seen[i][r.EA>>6] = struct{}{}
			}
		}
	}
	shared, private := 0, 0
	for line := range seen[0] {
		if _, ok := seen[1][line]; ok {
			shared++
		} else {
			private++
		}
	}
	if shared == 0 {
		t.Error("no shared lines between CPU 0 and CPU 1")
	}
	if private == 0 {
		t.Error("no private lines: CPUs alias completely")
	}
	// All shared lines must be in the shared region.
	for line := range seen[0] {
		if _, ok := seen[1][line]; ok {
			addr := line << 6
			if addr < sharedBase || addr >= sharedBase+uint64(TPCC16P().SharedBytes) {
				t.Fatalf("shared line %#x outside shared region", addr)
			}
		}
	}
}

// Without a shared region, distinct CPUs never overlap.
func TestMPPrivateDisjoint(t *testing.T) {
	gens := NewMP(SPECint95(), 9, 2)
	a, b := map[uint64]struct{}{}, map[uint64]struct{}{}
	for _, r := range drain(gens[0], 50000) {
		if r.Op.IsMemory() {
			a[r.EA>>6] = struct{}{}
		}
	}
	for _, r := range drain(gens[1], 50000) {
		if r.Op.IsMemory() {
			b[r.EA>>6] = struct{}{}
		}
	}
	for line := range a {
		if _, ok := b[line]; ok {
			t.Fatalf("line %#x accessed by both CPUs without a shared region", line<<6)
		}
	}
}

func TestTakenBranchTargets(t *testing.T) {
	g := New(TPCC(), 13, 0)
	recs := drain(g, 100000)
	for i, r := range recs {
		if r.Op.IsBranch() && r.Taken && r.EA == 0 {
			t.Fatalf("record %d: taken branch with zero target", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	g := New(SPECfp95(), 1, 0)
	if s := g.Describe(); s == "" {
		t.Error("empty Describe")
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := New(TPCC(), 1, 0)
	var r trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&r)
	}
}

func TestHPCProfile(t *testing.T) {
	p := HPC()
	g := New(p, 3, 0)
	recs := drain(g, 100000)
	fmadd, mem := 0, 0
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		if r.Op == isa.FPMulAdd {
			fmadd++
		}
		if r.Op.IsMemory() {
			mem++
		}
	}
	if frac := float64(fmadd) / float64(len(recs)); frac < 0.20 {
		t.Errorf("fmadd fraction %.3f too low for an FMA kernel", frac)
	}
	if mem == 0 {
		t.Error("no memory traffic")
	}
}

// A HotFuncs value larger than NumFuncs must clamp, not panic.
func TestHotFuncsClamp(t *testing.T) {
	p := TPCC()
	p.NumFuncs, p.BlocksPerFunc = 10, 8
	p.HotFuncs = 500 // > NumFuncs
	g := New(p, 1, 0)
	var r trace.Record
	for i := 0; i < 20000; i++ {
		if !g.Next(&r) {
			t.Fatal("source ended")
		}
	}
}

// The TPC-C branch working set must actually exceed the 4K BHT while
// fitting the 16K one — the precondition for the Figure 9/10 effect.
func TestTPCCBranchWorkingSet(t *testing.T) {
	g := New(TPCC(), 42, 0)
	taken := map[uint64]struct{}{}
	var r trace.Record
	for i := 0; i < 400000; i++ {
		g.Next(&r)
		if r.Op == isa.Branch && r.Taken {
			taken[r.PC] = struct{}{}
		}
	}
	if len(taken) < 4500 {
		t.Errorf("taken-branch working set %d does not pressure a 4K BHT", len(taken))
	}
	if len(taken) > 16000 {
		t.Errorf("taken-branch working set %d overwhelms even the 16K BHT", len(taken))
	}
}
