// Package workload generates synthetic instruction traces that stand in for
// the paper's SPEC CPU95/CPU2000 and TPC-C traces.
//
// The paper generated SPEC traces with Sun's Forte compiler + Shade, and
// TPC-C traces with a Fujitsu kernel tracer on a tuned system. Neither is
// available, so we substitute statistical generators: each workload is a
// Profile describing a synthetic *static program* (basic blocks grouped
// into functions with loops and calls, each static branch with a fixed
// bias, each memory slot bound to a data region) plus the dynamic behavior
// (Zipf function popularity, loop trip counts, dependency distances). A
// deterministic walk over that program emits the trace.
//
// This preserves what the design studies actually measure: instruction mix,
// code footprint (L1I/BHT pressure), data working-set structure (L1D/L2/TLB
// pressure), branch predictability, pointer-chain vs streaming access
// (prefetchability), and MP data sharing. See DESIGN.md "Substitutions".
package workload

import (
	"strings"

	"sparc64v/internal/isa"
)

// RegionKind classifies a data region's access pattern.
type RegionKind uint8

const (
	// Stack is a small per-call-frame region; essentially always cache-hot.
	Stack RegionKind = iota
	// Random is uniform random line-granular access over the region,
	// modeling hash/index/B-tree style working sets.
	Random
	// Stream is sequential strided access (several independent streams),
	// modeling array sweeps; highly prefetchable.
	Stream
	// Chain is sequential line-by-line access where each load depends on
	// the previous one (pointer chasing a list laid out in order) — the
	// "chain access pattern of memory addresses" the paper's prefetch
	// algorithm fits.
	Chain
	// Shared is uniform random access over a region shared by all CPUs of
	// an SMP; stores to it cause coherence traffic.
	Shared
)

// String names the region kind.
func (k RegionKind) String() string {
	switch k {
	case Stack:
		return "stack"
	case Random:
		return "random"
	case Stream:
		return "stream"
	case Chain:
		return "chain"
	case Shared:
		return "shared"
	}
	return "region?"
}

// Region describes one data region of a profile.
type Region struct {
	// Kind selects the access pattern.
	Kind RegionKind
	// Weight is the relative probability that a memory slot binds to this
	// region.
	Weight float64
	// Bytes is the region size.
	Bytes int64
	// StrideBytes is the stream stride (Stream only; Chain uses the line).
	StrideBytes int
	// Streams is the number of independent sequential streams (Stream/Chain).
	Streams int
	// StoreFrac is the fraction of accesses to this region that are stores
	// (overriding the slot's class would be wrong; instead the program
	// builder biases store slots toward regions with higher StoreFrac).
	StoreFrac float64
	// AliasWithCode places the region so that it occupies the same cache
	// sets as the code image in large direct-mapped caches, modeling the
	// physical-page conflicts between instruction and data working sets
	// that make direct-mapped second-level caches thrash under large
	// commercial workloads (the paper's section 4.3.3/4.3.4 argument).
	AliasWithCode bool
}

// Profile is the complete statistical description of a workload.
type Profile struct {
	// Name labels the workload in reports ("SPECint95", "TPC-C", ...).
	Name string
	// Mix gives the per-class fraction of non-branch instruction slots.
	// Branch/Call/Return fractions are determined by the program shape
	// (BlockLen, CallFrac) rather than by Mix.
	Mix map[isa.Class]float64
	// NumFuncs and BlocksPerFunc shape the static program; code footprint
	// ≈ NumFuncs * BlocksPerFunc * BlockLen * 4 bytes.
	NumFuncs, BlocksPerFunc int
	// BlockLen is the mean basic-block length in instructions (the block
	// terminator branch included).
	BlockLen int
	// LoopIterMean is the mean trip count of a function's main loop.
	LoopIterMean int
	// CallFrac is the probability that a block boundary performs a call.
	CallFrac float64
	// MaxCallDepth bounds the synthetic call stack.
	MaxCallDepth int
	// ZipfS is the skew of function popularity (higher = hotter hot code).
	ZipfS float64
	// HotFuncs, when > 0, overrides Zipf popularity with a two-tier model:
	// a uniform hot set of HotFuncs functions receives HotProb of all
	// transaction dispatches, the remaining functions share the rest.
	// OLTP code behaves this way: a broad plateau of equally warm
	// functions (the TPC-C transaction mix plus kernel paths) rather than
	// a smooth Zipf tail.
	HotFuncs int
	// HotProb is the probability of drawing from the hot set.
	HotProb float64
	// BiasedFrac is the fraction of static conditional branches that are
	// strongly biased (predictable); the rest get a taken probability
	// uniform in [0.25,0.75] (data-dependent, hard to predict).
	BiasedFrac float64
	// BiasedTaken is the taken probability of a biased branch.
	BiasedTaken float64
	// Regions lists the data regions.
	Regions []Region
	// DepDistMean is the mean register dependency distance, in dynamic
	// instructions (smaller = less ILP, more forwarding pressure).
	DepDistMean float64
	// SpecialFrac is the fraction of non-branch slots that are Special
	// (serializing) instructions — atomics, MEMBAR, SAVE/RESTORE spills,
	// kernel entry/exit. TPC-C traces include kernel code, so theirs is
	// far higher than SPEC's.
	SpecialFrac float64
	// SharedBytes > 0 places a Shared region of that size at a fixed base
	// common to all CPUs (MP runs); its Weight is SharedWeight.
	SharedBytes   int64
	SharedWeight  float64
	SharedStoreFr float64
}

// CodeBytes returns the approximate static code footprint.
func (p *Profile) CodeBytes() int {
	return p.NumFuncs * p.BlocksPerFunc * p.BlockLen * isa.InstrBytes
}

// SPECint95 models the CPU95 integer suite: small code and data footprints
// that largely fit the caches, short blocks, and a large share of
// data-dependent branches (the paper: ~30% of time lost to mispredicts,
// high cache-hit ratios).
func SPECint95() Profile {
	return Profile{
		Name: "SPECint95",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.62, isa.IntMul: 0.01,
			isa.Load: 0.26, isa.Store: 0.11,
		},
		NumFuncs: 40, BlocksPerFunc: 24, BlockLen: 6,
		LoopIterMean: 12, CallFrac: 0.004, MaxCallDepth: 8, ZipfS: 1.2,
		BiasedFrac: 0.85, BiasedTaken: 0.95,
		Regions: []Region{
			{Kind: Stack, Weight: 0.32, Bytes: 8 << 10},
			{Kind: Random, Weight: 0.44, Bytes: 20 << 10, StoreFrac: 0.3},
			{Kind: Random, Weight: 0.02, Bytes: 160 << 10, StoreFrac: 0.25},
			{Kind: Chain, Weight: 0.01, Bytes: 48 << 10, Streams: 4},
		},
		DepDistMean: 3.5,
		SpecialFrac: 0.001,
	}
}

// SPECfp95 models the CPU95 floating-point suite: long blocks of FP work,
// very predictable loop branches, streaming access over moderate arrays
// (the paper: 74% of time in the core, 3% branch stalls).
func SPECfp95() Profile {
	return Profile{
		Name: "SPECfp95",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.26,
			isa.Load:   0.27, isa.Store: 0.09,
			isa.FPAdd: 0.16, isa.FPMul: 0.10, isa.FPMulAdd: 0.10, isa.FPDiv: 0.02,
		},
		NumFuncs: 16, BlocksPerFunc: 12, BlockLen: 18,
		LoopIterMean: 60, CallFrac: 0.0015, MaxCallDepth: 6, ZipfS: 1.3,
		BiasedFrac: 0.97, BiasedTaken: 0.97,
		Regions: []Region{
			{Kind: Stack, Weight: 0.22, Bytes: 8 << 10},
			{Kind: Stream, Weight: 0.18, Bytes: 8 << 20, StrideBytes: 8, Streams: 6, StoreFrac: 0.25},
			{Kind: Random, Weight: 0.48, Bytes: 24 << 10, StoreFrac: 0.2},
			{Kind: Chain, Weight: 0.002, Bytes: 1 << 20, Streams: 4},
		},
		DepDistMean: 4.5,
		SpecialFrac: 0.0005,
	}
}

// SPECint2000 models the CPU2000 integer suite: like int95 but with larger
// code and data footprints (some L2 pressure).
func SPECint2000() Profile {
	return Profile{
		Name: "SPECint2000",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.60, isa.IntMul: 0.015,
			isa.Load: 0.27, isa.Store: 0.11,
		},
		NumFuncs: 110, BlocksPerFunc: 28, BlockLen: 6,
		LoopIterMean: 10, CallFrac: 0.004, MaxCallDepth: 10, ZipfS: 1.15,
		BiasedFrac: 0.82, BiasedTaken: 0.94,
		Regions: []Region{
			{Kind: Stack, Weight: 0.30, Bytes: 8 << 10},
			{Kind: Random, Weight: 0.42, Bytes: 24 << 10, StoreFrac: 0.3},
			{Kind: Random, Weight: 0.02, Bytes: 320 << 10, StoreFrac: 0.25},
			{Kind: Random, Weight: 0.002, Bytes: 8 << 20, StoreFrac: 0.2},
			{Kind: Chain, Weight: 0.012, Bytes: 96 << 10, Streams: 4},
		},
		DepDistMean: 3.5,
		SpecialFrac: 0.001,
	}
}

// SPECfp2000 models the CPU2000 floating-point suite: large streaming
// arrays well beyond the L2 (the paper's biggest prefetch winner, >13% IPC).
func SPECfp2000() Profile {
	return Profile{
		Name: "SPECfp2000",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.24,
			isa.Load:   0.28, isa.Store: 0.10,
			isa.FPAdd: 0.15, isa.FPMul: 0.10, isa.FPMulAdd: 0.11, isa.FPDiv: 0.02,
		},
		NumFuncs: 24, BlocksPerFunc: 14, BlockLen: 20,
		LoopIterMean: 90, CallFrac: 0.001, MaxCallDepth: 6, ZipfS: 1.3,
		BiasedFrac: 0.97, BiasedTaken: 0.97,
		Regions: []Region{
			{Kind: Stack, Weight: 0.18, Bytes: 8 << 10},
			{Kind: Stream, Weight: 0.12, Bytes: 48 << 20, StrideBytes: 8, Streams: 6, StoreFrac: 0.25},
			{Kind: Chain, Weight: 0.002, Bytes: 8 << 20, Streams: 4},
			{Kind: Random, Weight: 0.50, Bytes: 24 << 10, StoreFrac: 0.2},
			{Kind: Random, Weight: 0.006, Bytes: 64 << 20, StoreFrac: 0.2},
		},
		DepDistMean: 4.5,
		SpecialFrac: 0.0005,
	}
}

// TPCC models the TPC-C on-line transaction processing workload including
// kernel execution: a very large instruction footprint, a data working set
// far beyond the 2MB L2, many hard-to-predict branches, and serializing
// kernel/atomic instructions (the paper: 35% of time in L2-miss stalls;
// BHT- and L2-geometry sensitive).
func TPCC() Profile {
	return Profile{
		Name: "TPC-C",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.55, isa.IntMul: 0.005,
			isa.Load: 0.30, isa.Store: 0.14,
		},
		NumFuncs: 2500, BlocksPerFunc: 20, BlockLen: 5,
		LoopIterMean: 2, CallFrac: 0.03, MaxCallDepth: 6, ZipfS: 1.15,
		HotFuncs: 330, HotProb: 0.94,
		BiasedFrac: 0.85, BiasedTaken: 0.93,
		Regions: []Region{
			{Kind: Stack, Weight: 0.30, Bytes: 8 << 10},
			{Kind: Random, Weight: 0.40, Bytes: 28 << 10, StoreFrac: 0.35},
			{Kind: Random, Weight: 0.022, Bytes: 1280 << 10, StoreFrac: 0.3, AliasWithCode: true},
			{Kind: Random, Weight: 0.014, Bytes: 4 << 20, StoreFrac: 0.3},
			{Kind: Random, Weight: 0.005, Bytes: 160 << 20, StoreFrac: 0.25},
			{Kind: Chain, Weight: 0.004, Bytes: 24 << 20, Streams: 8},
		},
		DepDistMean: 3.2,
		SpecialFrac: 0.008,
	}
}

// TPCC16P is the TPC-C profile for the 16-processor SMP model: identical
// per-CPU behavior plus a shared database-buffer region with stores, which
// generates the coherence (move-out) traffic the paper's MP studies stress.
func TPCC16P() Profile {
	p := TPCC()
	p.Name = "TPC-C(16P)"
	p.SharedBytes = 32 << 20
	p.SharedWeight = 0.03
	p.SharedStoreFr = 0.20
	return p
}

// HPC models a dense floating-point kernel (DAXPY/matmul-style) — the
// high-performance-computing side of the SPARC64 V's mission. The paper
// singles out the two floating-point multiply-add units as "effective for
// HPC performance"; this profile exists to demonstrate that design choice
// (see BenchmarkAblationSingleFMAUnit and examples/hpc_fma).
func HPC() Profile {
	return Profile{
		Name: "HPC-FMA",
		Mix: map[isa.Class]float64{
			isa.IntALU: 0.18,
			isa.Load:   0.26, isa.Store: 0.10,
			isa.FPAdd: 0.06, isa.FPMul: 0.05, isa.FPMulAdd: 0.35,
		},
		NumFuncs: 8, BlocksPerFunc: 10, BlockLen: 24,
		LoopIterMean: 200, CallFrac: 0.001, MaxCallDepth: 4, ZipfS: 1.3,
		BiasedFrac: 0.99, BiasedTaken: 0.98,
		Regions: []Region{
			{Kind: Stack, Weight: 0.10, Bytes: 8 << 10},
			{Kind: Stream, Weight: 0.55, Bytes: 2 << 20, StrideBytes: 8, Streams: 8, StoreFrac: 0.2},
			{Kind: Random, Weight: 0.35, Bytes: 32 << 10, StoreFrac: 0.2},
		},
		DepDistMean: 6.0,
		SpecialFrac: 0.0002,
	}
}

// UPProfiles returns the five uniprocessor workloads of the paper's studies
// in presentation order.
func UPProfiles() []Profile {
	return []Profile{SPECint95(), SPECfp95(), SPECint2000(), SPECfp2000(), TPCC()}
}

// ByName resolves a workload by its canonical lowercase name. It is the
// single lookup shared by the CLI tools and the experiment server, so the
// name accepted on the command line and in POST /v1/run bodies is the same.
func ByName(name string) (Profile, bool) {
	switch strings.ToLower(name) {
	case "specint95":
		return SPECint95(), true
	case "specfp95":
		return SPECfp95(), true
	case "specint2000":
		return SPECint2000(), true
	case "specfp2000":
		return SPECfp2000(), true
	case "tpcc":
		return TPCC(), true
	case "tpcc16p":
		return TPCC16P(), true
	case "hpc":
		return HPC(), true
	}
	return Profile{}, false
}

// Names lists the workloads ByName resolves, for error messages and docs.
func Names() []string {
	return []string{"specint95", "specfp95", "specint2000", "specfp2000", "tpcc", "tpcc16p", "hpc"}
}
