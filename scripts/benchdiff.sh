#!/bin/sh
# Benchmark regression gate over the scheduler and run-cache
# micro-benchmarks (the paths every simulation request crosses).
#
# Runs `go test -bench . -benchmem -count $BENCH_COUNT` (default 5), takes
# the per-benchmark MEDIAN ns/op and allocs/op, writes them to
# BENCH_<sha>.json, and compares against scripts/bench_baseline.json:
#
#   - allocs/op may grow at most BENCH_ALLOC_TOLERANCE % (default 15).
#     Allocation counts are deterministic and machine-independent, so this
#     is the tight gate: a new per-job or per-request allocation fails CI
#     on any host.
#   - ns/op may grow at most BENCH_NS_TOLERANCE % (default 75). Wall time
#     on shared CI hosts is noisy, so by default this only catches
#     catastrophic slowdowns; tighten locally (BENCH_NS_TOLERANCE=15) when
#     hunting a time regression on a quiet machine.
#
# Improvements never fail the gate; refresh the baseline when they stick.
# A benchmark added or removed without updating the baseline fails, so the
# baseline cannot silently rot.
#
# Usage:
#   scripts/benchdiff.sh            run benchmarks and compare to baseline
#   scripts/benchdiff.sh -update    run benchmarks and rewrite the baseline
set -eu
cd "$(dirname "$0")/.."

PKGS="./internal/sched ./internal/runcache ./internal/core"
COUNT="${BENCH_COUNT:-5}"
NS_TOL="${BENCH_NS_TOLERANCE:-75}"
ALLOC_TOL="${BENCH_ALLOC_TOLERANCE:-15}"
BASELINE="scripts/bench_baseline.json"

mode=check
if [ "${1:-}" = "-update" ]; then
  mode=update
fi

sha="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
out="BENCH_${sha}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "benchdiff: $COUNT runs of $PKGS" >&2
go test -run='^$' -bench=. -benchmem -count="$COUNT" $PKGS >"$raw"

# Portable awk (no gawk extensions): medians via insertion sort.
awk -v sha="$sha" -v count="$COUNT" '
  /^pkg: / { pkg = $2; sub(/^.*\//, "", pkg); next }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    full = pkg "/" name
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "" || allocs == "") next
    if (!(full in seen)) { order[++n] = full; seen[full] = 1 }
    nsv[full] = nsv[full] " " ns
    av[full] = av[full] " " allocs
  }
  function median(str,    a, m, i, j, v) {
    m = split(str, a, " ")
    for (i = 2; i <= m; i++) {
      v = a[i] + 0
      for (j = i - 1; j >= 1 && a[j] + 0 > v; j--) a[j + 1] = a[j]
      a[j + 1] = v
    }
    return a[int((m + 1) / 2)] + 0
  }
  END {
    printf "{\n  \"commit\": \"%s\",\n  \"count\": %d,\n  \"benchmarks\": [\n", sha, count
    for (i = 1; i <= n; i++) {
      f = order[i]
      printf "    {\"name\":\"%s\",\"ns_per_op\":%g,\"allocs_per_op\":%g}%s\n", \
        f, median(nsv[f]), median(av[f]), (i < n ? "," : "")
    }
    printf "  ]\n}\n"
  }
' "$raw" >"$out"
echo "benchdiff: wrote $out" >&2

if [ "$mode" = update ]; then
  cp "$out" "$BASELINE"
  echo "benchdiff: baseline updated: $BASELINE" >&2
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "benchdiff: no $BASELINE; create it with scripts/benchdiff.sh -update" >&2
  exit 1
fi

# Each benchmark is one line of controlled JSON; split on double quotes:
# q[4] is the name, q[7] is ":<ns>," and q[9] is ":<allocs>}...".
if awk -v ns_tol="$NS_TOL" -v alloc_tol="$ALLOC_TOL" -v baseline="$BASELINE" '
  function num(s,    t) { t = s; gsub(/[^0-9.eE+-]/, "", t); return t + 0 }
  FNR == 1 { file++ }
  /"name":/ {
    split($0, q, "\"")
    name = q[4]
    if (file == 1) {
      bns[name] = num(q[7]); ba[name] = num(q[9]); inbase[name] = 1; border[++bn] = name
    } else {
      cns[name] = num(q[7]); ca[name] = num(q[9]); incur[name] = 1; corder[++cn] = name
    }
  }
  END {
    fail = 0
    for (i = 1; i <= bn; i++) {
      name = border[i]
      if (!(name in incur)) {
        printf "FAIL %s: in baseline but not in this run (removed? update %s)\n", name, baseline
        fail = 1
        continue
      }
      dns = (cns[name] - bns[name]) * 100 / bns[name]
      da = ba[name] > 0 ? (ca[name] - ba[name]) * 100 / ba[name] : (ca[name] > 0 ? 100 : 0)
      status = "ok  "
      if (da > alloc_tol || dns > ns_tol) { status = "FAIL"; fail = 1 }
      printf "%s %-42s ns/op %9g -> %9g (%+7.1f%%, tol +%g%%)   allocs/op %4g -> %4g (%+7.1f%%, tol +%g%%)\n", \
        status, name, bns[name], cns[name], dns, ns_tol, ba[name], ca[name], da, alloc_tol
    }
    for (i = 1; i <= cn; i++) {
      name = corder[i]
      if (!(name in inbase)) {
        printf "FAIL %s: new benchmark missing from baseline (run scripts/benchdiff.sh -update)\n", name
        fail = 1
      }
    }
    exit fail
  }
' "$BASELINE" "$out"; then
  echo "benchdiff: PASS (vs $BASELINE commit $(awk -F'"' '/"commit"/ {print $4}' "$BASELINE"))" >&2
else
  echo "benchdiff: FAIL; see table above. If the change is intended, refresh with scripts/benchdiff.sh -update" >&2
  exit 1
fi
