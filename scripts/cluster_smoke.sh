#!/usr/bin/env bash
# Smoke-test the distributed tier end to end: boot three simd workers
# with meshed peer caches, put a simgw gateway in front, run a 4-config
# sweep through the gateway twice, and prove via the gateway's /metrics
# that the warm pass ran zero simulations — every repeat was served from
# a cluster cache tier. Finishes by draining one worker and showing the
# pool stays available. Used by `make cluster-smoke` and the CI job.
set -euo pipefail
cd "$(dirname "$0")/.."

GW_ADDR="${CLUSTER_SMOKE_GW:-127.0.0.1:18970}"
W0_ADDR="${CLUSTER_SMOKE_W0:-127.0.0.1:18971}"
W1_ADDR="${CLUSTER_SMOKE_W1:-127.0.0.1:18972}"
W2_ADDR="${CLUSTER_SMOKE_W2:-127.0.0.1:18973}"
DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -INT "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/simd" ./cmd/simd
go build -o "$DIR/simgw" ./cmd/simgw

start_worker() { # node-id addr peer-addr peer-addr
  "$DIR/simd" -addr "$2" -node-id "$1" -workers 2 \
    -peers "http://$3,http://$4" 2>"$DIR/$1.log" &
  PIDS+=($!)
}
start_worker n0 "$W0_ADDR" "$W1_ADDR" "$W2_ADDR"
start_worker n1 "$W1_ADDR" "$W0_ADDR" "$W2_ADDR"
start_worker n2 "$W2_ADDR" "$W0_ADDR" "$W1_ADDR"

"$DIR/simgw" -addr "$GW_ADDR" -health-every 250ms \
  -workers "n0=http://$W0_ADDR,n1=http://$W1_ADDR,n2=http://$W2_ADDR" \
  2>"$DIR/simgw.log" &
PIDS+=($!)

wait_healthy() { # addr
  for _ in $(seq 1 100); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "cluster-smoke: $1 never became healthy" >&2
  cat "$DIR"/*.log >&2
  return 1
}
for addr in "$W0_ADDR" "$W1_ADDR" "$W2_ADDR" "$GW_ADDR"; do
  wait_healthy "$addr"
done

SWEEP=(
  '{"workload":"specint95","insts":50000,"seed":7}'
  '{"workload":"specint95","insts":50000,"seed":8}'
  '{"workload":"specfp95","insts":50000,"seed":7}'
  '{"workload":"specint2000","insts":50000,"seed":7}'
)

# Cold pass: every config simulates somewhere in the pool.
COLD=()
for body in "${SWEEP[@]}"; do
  COLD+=("$(curl -fsS -d "$body" "http://$GW_ADDR/v1/run")")
done

misses="$(curl -fsS "http://$GW_ADDR/metrics" \
  | sed -n 's/^sparc64v_gateway_cache_outcomes_total{outcome="miss"} //p')"
if [ "$misses" != "${#SWEEP[@]}" ]; then
  echo "cluster-smoke: cold pass ran $misses simulations, want ${#SWEEP[@]}" >&2
  exit 1
fi

# Warm pass: zero simulations cluster-wide; responses byte-identical to
# the cold pass apart from the cache marker.
for i in "${!SWEEP[@]}"; do
  WARM="$(curl -fsS -d "${SWEEP[$i]}" "http://$GW_ADDR/v1/run")"
  echo "$WARM" | grep -q '"cache": "hit' || {
    echo "cluster-smoke: warm run was not a cache hit: $WARM" >&2; exit 1
  }
  if [ "$(echo "${COLD[$i]}" | grep -v '"cache"')" != "$(echo "$WARM" | grep -v '"cache"')" ]; then
    echo "cluster-smoke: warm response differs from cold response for ${SWEEP[$i]}" >&2
    exit 1
  fi
done

METRICS="$(curl -fsS "http://$GW_ADDR/metrics")"
misses="$(echo "$METRICS" | sed -n 's/^sparc64v_gateway_cache_outcomes_total{outcome="miss"} //p')"
if [ "$misses" != "${#SWEEP[@]}" ]; then
  echo "cluster-smoke: warm pass simulated (misses $misses > ${#SWEEP[@]})" >&2
  echo "$METRICS" >&2
  exit 1
fi
hits="$(echo "$METRICS" \
  | sed -n 's/^sparc64v_gateway_cache_outcomes_total{outcome="hit\(-[a-z]*\)\?"} //p' \
  | awk '{s+=$1} END {print s}')"
if [ "$hits" -lt "${#SWEEP[@]}" ]; then
  echo "cluster-smoke: gateway saw only $hits cluster-wide cache hits, want >= ${#SWEEP[@]}" >&2
  echo "$METRICS" >&2
  exit 1
fi
echo "$METRICS" | grep -qx 'sparc64v_gateway_healthy_workers 3' || {
  echo "cluster-smoke: gateway does not see 3 healthy workers" >&2
  echo "$METRICS" >&2
  exit 1
}

# Drain one worker: its /healthz flips to 503, the gateway notices, and
# the pool keeps answering (from cache, and with capacity to simulate).
kill -INT "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
PIDS[0]=""
for _ in $(seq 1 100); do
  healthy="$(curl -fsS "http://$GW_ADDR/metrics" \
    | sed -n 's/^sparc64v_gateway_healthy_workers //p')"
  [ "$healthy" = 2 ] && break
  sleep 0.1
done
[ "$healthy" = 2 ] || { echo "cluster-smoke: gateway never noticed the drained worker" >&2; exit 1; }

POST_DRAIN="$(curl -fsS -d "${SWEEP[0]}" "http://$GW_ADDR/v1/run")"
if [ "$(echo "${COLD[0]}" | grep -v '"cache"')" != "$(echo "$POST_DRAIN" | grep -v '"cache"')" ]; then
  echo "cluster-smoke: post-drain response differs from cold response" >&2
  exit 1
fi

echo "cluster-smoke: OK (cold sweep simulated ${#SWEEP[@]}x, warm sweep 0x, cluster-wide hits visible at the gateway, drain survived)"
