#!/bin/sh
# sampling_speedup.sh -- measure the sampled-simulation speedup on a
# long-trace multiprocessor workload and record it as a JSON artifact.
#
# Runs the same workload twice through cmd/sparc64sim -- once full, once
# with a sampled schedule -- and writes scripts/sampling_speedup.json with
# wall times, CPIs, the speedup factor and the CPI error. The checked-in
# artifact documents the acceptance bar for sampled mode: >= 10x faster
# than the full run with |CPI error| < 5%.
#
# The multiprocessor workload is the demonstration target on purpose: with
# coherence and bus contention the detailed model costs ~5x more per
# instruction than uniprocessor runs, while functional fast-forward stays
# at trace-generation cost, so sampling pays off most exactly where long
# simulations hurt most (see DESIGN.md "Sampled simulation").
#
# Usage:
#   scripts/sampling_speedup.sh           measure and rewrite the artifact
#
# Environment overrides: SPEEDUP_WORKLOAD, SPEEDUP_INSTS, SPEEDUP_SCHED.
set -eu
cd "$(dirname "$0")/.."

WORKLOAD="${SPEEDUP_WORKLOAD:-tpcc16p}"
CPUS="${SPEEDUP_CPUS:-4}"
INSTS="${SPEEDUP_INSTS:-2000000}"
SCHED="${SPEEDUP_SCHED:-interval=200000,warmup=2000,measure=3000}"
OUT="scripts/sampling_speedup.json"

bin="$(mktemp -d)/sparc64sim"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/sparc64sim

# run <sample-spec> <report-file>; prints "<cpi> <millis>".
run() {
  start=$(date +%s%N)
  "$bin" -workload "$WORKLOAD" -cpus "$CPUS" -insts "$INSTS" -sample "$1" -json >"$2"
  end=$(date +%s%N)
  cpi=$(sed -n 's/^  "cpi": \([0-9.e+-]*\),*$/\1/p' "$2" | head -1)
  echo "$cpi $(((end - start) / 1000000))"
}

echo "sampling_speedup: full run ($WORKLOAD, $INSTS insts/CPU)..." >&2
set -- $(run off /tmp/speedup_full.json)
full_cpi=$1 full_ms=$2
echo "sampling_speedup: sampled run ($SCHED)..." >&2
set -- $(run "$SCHED" /tmp/speedup_sampled.json)
samp_cpi=$1 samp_ms=$2
windows=$(sed -n 's/^ *"Windows": \([0-9]*\),*$/\1/p' /tmp/speedup_sampled.json | head -1)

sha="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
awk -v wl="$WORKLOAD" -v cpus="$CPUS" -v insts="$INSTS" -v sched="$SCHED" -v sha="$sha" \
  -v fc="$full_cpi" -v fm="$full_ms" -v sc="$samp_cpi" -v sm="$samp_ms" \
  -v win="$windows" 'BEGIN {
    speedup = fm / sm
    err = 100 * (sc - fc) / fc
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", sha
    printf "  \"workload\": \"%s\",\n", wl
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"insts_per_cpu\": %d,\n", insts
    printf "  \"schedule\": \"%s\",\n", sched
    printf "  \"full_seconds\": %.2f,\n", fm / 1000
    printf "  \"full_cpi\": %.4f,\n", fc
    printf "  \"sampled_seconds\": %.2f,\n", sm / 1000
    printf "  \"sampled_cpi\": %.4f,\n", sc
    printf "  \"windows\": %d,\n", win
    printf "  \"speedup\": %.1f,\n", speedup
    printf "  \"cpi_error_pct\": %.2f,\n", err
    printf "  \"pass\": %s\n", (speedup >= 10 && err < 5 && err > -5) ? "true" : "false"
    printf "}\n"
    exit !(speedup >= 10 && err < 5 && err > -5)
  }' >"$OUT" || { echo "sampling_speedup: FAIL (see $OUT)" >&2; cat "$OUT" >&2; exit 1; }
cat "$OUT"
echo "sampling_speedup: wrote $OUT" >&2
