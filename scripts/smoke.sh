#!/usr/bin/env bash
# Smoke-test the simd HTTP service end to end: boot the daemon against a
# fresh cache directory, run the same simulation twice, and prove via
# /metrics that the second request was served from the content-addressed
# cache. Finishes with a SIGINT to exercise the graceful drain. Used by
# `make smoke` and the CI smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18964}"
DIR="$(mktemp -d)"
LOG="$DIR/simd.log"
PID=""
cleanup() {
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -INT "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/simd" ./cmd/simd
"$DIR/simd" -addr "$ADDR" -cache-dir "$DIR/cache" -workers 2 2>"$LOG" &
PID=$!

up=""
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "smoke: simd exited during startup:" >&2; cat "$LOG" >&2; exit 1
  fi
  sleep 0.1
done
[ -n "$up" ] || { echo "smoke: simd never became healthy" >&2; cat "$LOG" >&2; exit 1; }

BODY='{"workload":"specint95","insts":50000,"seed":7}'
R1="$(curl -fsS -d "$BODY" "http://$ADDR/v1/run")"
R2="$(curl -fsS -d "$BODY" "http://$ADDR/v1/run")"

echo "$R1" | grep -q '"cache": "miss"' || { echo "smoke: first run was not a miss: $R1" >&2; exit 1; }
echo "$R2" | grep -q '"cache": "hit"' || { echo "smoke: second run was not a cache hit: $R2" >&2; exit 1; }

# Apart from the cache marker, the cached response must be byte-identical
# to the simulated one.
if [ "$(echo "$R1" | grep -v '"cache"')" != "$(echo "$R2" | grep -v '"cache"')" ]; then
  echo "smoke: cached response differs from simulated response" >&2
  diff <(echo "$R1") <(echo "$R2") >&2 || true
  exit 1
fi

METRICS="$(curl -fsS "http://$ADDR/metrics")"
for want in \
  'sparc64v_cache_hits_total{tier="memory"} 1' \
  'sparc64v_cache_misses_total 1' \
  'sparc64v_requests_total{endpoint="run"} 2' \
  'sparc64v_rejected_total 0' \
  'sparc64v_inflight_runs 0'; do
  echo "$METRICS" | grep -qF "$want" || {
    echo "smoke: /metrics missing '$want':" >&2; echo "$METRICS" >&2; exit 1
  }
done

# Graceful drain: SIGINT must exit cleanly.
kill -INT "$PID"
if ! wait "$PID"; then
  echo "smoke: simd exited non-zero on SIGINT:" >&2; cat "$LOG" >&2; exit 1
fi
PID=""

echo "smoke: OK (miss -> hit, byte-identical stats, metrics consistent, clean drain)"
