// Package sparc64v is a from-scratch reproduction of the performance model
// behind "Microarchitecture and Performance Analysis of a SPARC-V9
// Microprocessor for Enterprise Server Systems" (Sakamoto et al.,
// HPCA 2003): a trace-driven, cycle-driven timing model of the SPARC64 V
// out-of-order core paired with an equally detailed memory-system and SMP
// coherence model, plus the paper's complete evaluation harness.
//
// The package is a thin facade over the internal packages; everything a
// downstream user needs is re-exported here:
//
//	model, _ := sparc64v.NewModel(sparc64v.BaseConfig())
//	report, _ := model.Run(sparc64v.TPCC(), sparc64v.RunOptions{Insts: 500_000})
//	fmt.Println(report.IPC(), report.L2DemandMissRate())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package sparc64v

import (
	"sparc64v/internal/config"
	"sparc64v/internal/core"
	"sparc64v/internal/expt"
	"sparc64v/internal/system"
	"sparc64v/internal/trace"
	"sparc64v/internal/verif"
	"sparc64v/internal/workload"
)

// Core model types.
type (
	// Model is the performance model bound to one machine configuration.
	Model = core.Model
	// RunOptions controls trace length, seed and warmup of a run.
	RunOptions = core.RunOptions
	// Report is the result of a simulation run.
	Report = system.Report
	// BreakdownResult is a Figure 7 style stall attribution.
	BreakdownResult = core.BreakdownResult
	// Config is the full machine + model-fidelity configuration.
	Config = config.Config
	// Profile is a synthetic workload description.
	Profile = workload.Profile
	// TraceRecord is one dynamic instruction of a trace.
	TraceRecord = trace.Record
	// TraceSource supplies trace records to a simulated CPU.
	TraceSource = trace.Source
	// ExperimentResult is one reproduced table or figure.
	ExperimentResult = expt.Result
	// AccuracyStudy is the Figure 19 model-accuracy series.
	AccuracyStudy = verif.AccuracyStudy
	// ReverseProgram is a reverse-traced, exactly replayable test program.
	ReverseProgram = verif.Program
)

// NewModel builds a performance model for the configuration.
func NewModel(cfg Config) (*Model, error) { return core.NewModel(cfg) }

// BaseConfig returns the Table 1 machine (the SPARC64 V as shipped).
func BaseConfig() Config { return config.Base() }

// ModelVersions returns the fidelity ladder v1..v8 used by the accuracy
// methodology (Figure 19).
func ModelVersions() []core.Version { return core.Versions() }

// Workload profiles reproduced from the paper's evaluation.
var (
	// SPECint95 returns the CPU95 integer workload profile.
	SPECint95 = workload.SPECint95
	// SPECfp95 returns the CPU95 floating-point workload profile.
	SPECfp95 = workload.SPECfp95
	// SPECint2000 returns the CPU2000 integer workload profile.
	SPECint2000 = workload.SPECint2000
	// SPECfp2000 returns the CPU2000 floating-point workload profile.
	SPECfp2000 = workload.SPECfp2000
	// TPCC returns the OLTP (TPC-C) workload profile.
	TPCC = workload.TPCC
	// TPCC16P returns the 16-processor TPC-C profile with data sharing.
	TPCC16P = workload.TPCC16P
	// HPC returns the dense multiply-add kernel profile (the machine's
	// high-performance-computing mission; not one of the paper's five).
	HPC = workload.HPC
	// Workloads returns the five uniprocessor profiles in paper order.
	Workloads = workload.UPProfiles
)

// NewTrace builds the deterministic trace generator for a profile
// (cpu selects the per-processor view for MP workloads).
func NewTrace(p Profile, seed int64, cpu int) TraceSource {
	return workload.New(p, seed, cpu)
}

// Experiment harnesses, one per paper artifact.
var (
	// Table1 reports the base machine parameters.
	Table1 = expt.Table1
	// Fig07 runs the benchmark-characterization breakdown.
	Fig07 = expt.Fig07
	// Fig08 runs the issue-width study.
	Fig08 = expt.Fig08
	// Fig09and10 runs the BHT geometry study.
	Fig09and10 = expt.Fig09and10
	// Fig11to13 runs the L1 geometry study.
	Fig11to13 = expt.Fig11to13
	// Fig14and15 runs the L2 geometry study (incl. TPC-C 16P).
	Fig14and15 = expt.Fig14and15
	// Fig16and17 runs the hardware-prefetch study.
	Fig16and17 = expt.Fig16and17
	// Fig18 runs the reservation-station topology study.
	Fig18 = expt.Fig18
	// Fig19 runs the model-accuracy study.
	Fig19 = expt.Fig19
	// AllExperiments runs everything in presentation order.
	AllExperiments = expt.All
	// AllExperimentsContext is AllExperiments with a cancellation point:
	// completed studies still render, missing ones are marked incomplete.
	AllExperimentsContext = expt.AllContext
)

// RunAccuracyStudy runs the Figure 19 methodology for one workload.
var RunAccuracyStudy = verif.RunAccuracyStudy

// RunAccuracyStudyContext is RunAccuracyStudy with a cancellation point.
var RunAccuracyStudyContext = verif.RunAccuracyStudyContext

// ReverseTrace converts a trace into an exactly replayable test program
// (the paper's Reverse Tracer, reference [11]).
func ReverseTrace(src TraceSource) (*ReverseProgram, error) { return verif.FromTrace(src) }
