package sparc64v

import (
	"testing"

	"sparc64v/internal/trace"
)

// The public facade must be usable end-to-end the way README shows.
func TestPublicAPIQuickstart(t *testing.T) {
	model, err := NewModel(BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := model.Run(TPCC(), RunOptions{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if report.IPC() <= 0 {
		t.Fatal("zero IPC through the public API")
	}
	if report.L2DemandMissRate() <= 0 {
		t.Fatal("TPC-C with a zero L2 miss rate")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("Workloads() = %d profiles", len(Workloads()))
	}
	src := NewTrace(SPECfp95(), 1, 0)
	var r TraceRecord
	if !src.Next(&r) {
		t.Fatal("trace source empty")
	}
}

func TestPublicVersions(t *testing.T) {
	if len(ModelVersions()) != 8 {
		t.Fatal("ModelVersions() != 8")
	}
}

func TestPublicReverseTracer(t *testing.T) {
	recs := trace.Collect(trace.NewLimitSource(NewTrace(SPECint95(), 2, 0), 5000), 0)
	prog, err := ReverseTrace(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != len(recs) {
		t.Fatalf("program length %d != %d", prog.Len(), len(recs))
	}
}

func TestPublicBreakdown(t *testing.T) {
	model, _ := NewModel(BaseConfig())
	br, err := model.Breakdown(SPECint95(), RunOptions{Insts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if br.Breakdown.Sum() < 0.9 {
		t.Fatalf("breakdown sum %.2f", br.Breakdown.Sum())
	}
}

func TestPublicExperimentTable1(t *testing.T) {
	if r := Table1(); r.Table.Rows() == 0 {
		t.Fatal("empty Table 1")
	}
}
